#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hadar::obs {
namespace {

std::string fmt_double(double v) {
  char buf[48];
  // Integral values (the common counter case) print without a fraction.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

// fetch_add for atomic<double> via CAS, portable across library versions.
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: empty bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds not strictly ascending");
    }
  }
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  // First bound with v <= bound; everything above the last bound overflows.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.load(std::memory_order_relaxed));
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (e.counter == nullptr) {
    if (e.gauge != nullptr || e.histogram != nullptr) {
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a counter");
    }
    e.kind = MetricValue::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (e.gauge == nullptr) {
    if (e.counter != nullptr || e.histogram != nullptr) {
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a gauge");
    }
    e.kind = MetricValue::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& e = entries_[name];
  if (e.histogram == nullptr) {
    if (e.counter != nullptr || e.gauge != nullptr) {
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a histogram");
    }
    e.kind = MetricValue::Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

std::vector<MetricValue> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already name-sorted
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricValue::Kind::kCounter:
        v.value = static_cast<double>(e.counter->value());
        break;
      case MetricValue::Kind::kGauge:
        v.value = e.gauge->value();
        break;
      case MetricValue::Kind::kHistogram:
        v.histogram = e.histogram->snapshot();
        v.value = static_cast<double>(v.histogram.total);
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& m : snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + m.name + "\": ";
    if (m.kind == MetricValue::Kind::kHistogram) {
      out += "{\"total\": " + fmt_double(static_cast<double>(m.histogram.total)) +
             ", \"sum\": " + fmt_double(m.histogram.sum) + ", \"buckets\": [";
      for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
        if (i > 0) out += ", ";
        out += fmt_double(static_cast<double>(m.histogram.counts[i]));
      }
      out += "]}";
    } else {
      out += fmt_double(m.value);
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "metric,kind,value\n";
  for (const auto& m : snapshot()) {
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += m.name + ",counter," + fmt_double(m.value) + "\n";
        break;
      case MetricValue::Kind::kGauge:
        out += m.name + ",gauge," + fmt_double(m.value) + "\n";
        break;
      case MetricValue::Kind::kHistogram:
        for (std::size_t i = 0; i < m.histogram.counts.size(); ++i) {
          const std::string le = i < m.histogram.bounds.size()
                                     ? fmt_double(m.histogram.bounds[i])
                                     : std::string("inf");
          out += m.name + ".le_" + le + ",histogram," +
                 fmt_double(static_cast<double>(m.histogram.counts[i])) + "\n";
        }
        out += m.name + ".sum,histogram," + fmt_double(m.histogram.sum) + "\n";
        break;
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case MetricValue::Kind::kCounter:
        e.counter->reset();
        break;
      case MetricValue::Kind::kGauge:
        e.gauge->set(0.0);
        break;
      case MetricValue::Kind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

void MetricsCsvSampler::sample(double sim_time) {
  if (registry_ == nullptr) return;
  const auto snap = registry_->snapshot();
  if (columns_.empty()) {
    for (const auto& m : snap) {
      if (m.kind != MetricValue::Kind::kHistogram) columns_.push_back(m.name);
    }
  }
  std::string row = fmt_double(sim_time);
  for (const auto& col : columns_) {
    double v = 0.0;
    for (const auto& m : snap) {
      if (m.name == col) {
        v = m.value;
        break;
      }
    }
    row += ',';
    row += fmt_double(v);
  }
  body_ += row;
  body_ += '\n';
  ++rows_;
}

std::string MetricsCsvSampler::csv() const {
  if (rows_ == 0) return {};
  std::string out = "sim_time";
  for (const auto& col : columns_) out += "," + col;
  out += "\n" + body_;
  return out;
}

}  // namespace hadar::obs
