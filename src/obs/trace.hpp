// Structured tracing for the scheduler stack: typed spans and instant
// events recorded into per-thread buffers and exported as Chrome
// `chrome://tracing` / Perfetto-compatible JSON.
//
// Model: at most one TraceSession is *installed* process-wide. Call sites
// use the HADAR_TRACE_SCOPE RAII macro (or ScopedSpan directly when they
// need to attach result args); with no session installed a scope costs one
// relaxed atomic load and a branch — the disabled path stays off the
// profile (verified by bench_perf_regression's overhead check). Recording
// never mutates simulation state or consumes simulation randomness, so a
// traced run computes the bit-identical schedule of an untraced one.
//
// Thread-safety: each thread records into its own buffer (registration of a
// new thread takes the session mutex once); concurrent record() calls never
// share mutable state. snapshot()/export must not race with recording —
// drain after the parallel region, as the benches and the simulator do.
//
// Determinism contract: span names, categories, and args are pure functions
// of the simulation, so traces taken at HADAR_THREADS=1 and =N contain the
// same multiset of events, differing only in tid and wall-time fields
// (tests/test_obs.cpp pins this).
//
// Span taxonomy (DESIGN.md §10): sim.run > sim.round > {sim.failures,
// sched.schedule > stage.{admission,priority,allocation,placement,
// preemption} > {hadar.price_bounds, hadar.dp > hadar.beam_level,
// gavel.recompute > lp.solve > {lp.phase1, lp.phase2, lp.canonicalize},
// *.pack}, sim.advance}, plus fault/lifecycle instants and "C" counters.
// The stage.* spans (category "pipeline") wrap each StagedScheduler stage
// and record pipeline.<stage>_ms metrics (DESIGN.md §14).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hadar::obs {

struct TraceConfig {
  bool enabled = true;  ///< false constructs a session that never records
  /// 0 = round-level spans only; 1 (default) = scheduler/solver internals;
  /// 2 = fine-grained (beam levels, LP phases). HADAR_TRACE_DETAIL.
  int detail = 1;
  std::string path;  ///< export target used by TraceGuard-style owners
};

/// One numeric key/value attached to an event. Keys are string literals
/// (call sites pass compile-time names; nothing is copied on the hot path).
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

enum class TracePhase : char {
  kComplete = 'X',  ///< span with ts + dur
  kInstant = 'i',   ///< point event
  kCounter = 'C',   ///< sampled value (renders as a track in Perfetto)
};

struct TraceEvent {
  static constexpr int kMaxArgs = 4;

  const char* name = "";
  const char* cat = "";
  TracePhase phase = TracePhase::kInstant;
  double ts_us = 0.0;   ///< wall time since session install, microseconds
  double dur_us = 0.0;  ///< kComplete only
  std::uint32_t tid = 0;
  TraceArg args[kMaxArgs];
  int num_args = 0;
  /// Optional single string-valued arg (e.g. the scheduler name).
  const char* str_key = nullptr;
  std::string str_value;

  void add_arg(const char* key, double value) {
    if (num_args < kMaxArgs) args[num_args++] = {key, value};
  }
};

/// Records spans/instants/counters and owns the session's MetricsRegistry.
class TraceSession {
 public:
  explicit TraceSession(TraceConfig cfg = {});
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Makes this the process-wide current session (starting its clock) /
  /// removes it. Install/uninstall must not race with recording threads.
  void install();
  void uninstall();

  /// The installed session, or nullptr. One relaxed atomic load.
  static TraceSession* current() {
    return current_.load(std::memory_order_acquire);
  }

  const TraceConfig& config() const { return cfg_; }
  int detail() const { return cfg_.detail; }

  /// Microseconds since install().
  double now_us() const;

  /// Appends to the calling thread's buffer (thread-safe, lock-free after
  /// the thread's first event).
  void record(TraceEvent e);

  void instant(const char* cat, const char* name,
               std::initializer_list<TraceArg> args = {});
  /// Emits a Chrome "C" event: `name` becomes a value track over time.
  void counter(const char* name, double value);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Appends one per-round row (all counter/gauge values) to the session's
  /// metrics CSV. Called by the simulator at round boundaries.
  void sample_metrics(double sim_time);
  /// Per-round metrics CSV accumulated via sample_metrics(); empty when no
  /// rounds were sampled.
  std::string metrics_csv() const;

  /// Merged copy of all thread buffers, ordered by (tid, ts). Must not race
  /// with in-flight record() calls.
  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;

  /// Chrome trace JSON ({"traceEvents": [...]}). Load via chrome://tracing
  /// or https://ui.perfetto.dev.
  std::string chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  /// Drops all recorded events (buffers stay registered).
  void clear();

 private:
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuf* buf_for_this_thread();

  static std::atomic<TraceSession*> current_;

  TraceConfig cfg_;
  std::uint64_t id_ = 0;  ///< process-unique, keys the thread-local cache
  std::int64_t start_ns_ = 0;
  MetricsRegistry metrics_;

  mutable std::mutex mu_;  // guards bufs_ registration and the metrics CSV
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  MetricsCsvSampler csv_{&metrics_};
};

/// True when a session is installed; the gate every hook checks first.
inline bool tracing() { return TraceSession::current() != nullptr; }

/// Metric helpers that no-op without an installed session. Handle lookup is
/// by name per call — cache the Counter& in hot loops that fire per item.
void count(const char* name, std::uint64_t delta = 1);
void gauge_set(const char* name, double value);
void observe(const char* name, double value);  // see kDurationBucketsMs

/// Default duration buckets (milliseconds) for observe() histograms.
std::vector<double> duration_buckets_ms();

/// RAII span: records a kComplete event covering its lifetime. When no
/// session is installed (or the session's detail level is below
/// `min_detail`) construction is a load+branch and everything else no-ops.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name, int min_detail = 0) {
    TraceSession* s = TraceSession::current();
    if (s == nullptr || s->detail() < min_detail) return;
    session_ = s;
    event_.cat = cat;
    event_.name = name;
    event_.phase = TracePhase::kComplete;
    event_.ts_us = s->now_us();
  }
  ~ScopedSpan() {
    if (session_ == nullptr) return;
    event_.dur_us = session_->now_us() - event_.ts_us;
    session_->record(std::move(event_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach args any time before destruction (e.g. results computed inside
  /// the span). No-ops when the span is disabled.
  void arg(const char* key, double value) {
    if (session_ != nullptr) event_.add_arg(key, value);
  }
  void str_arg(const char* key, std::string value) {
    if (session_ != nullptr) {
      event_.str_key = key;
      event_.str_value = std::move(value);
    }
  }
  bool active() const { return session_ != nullptr; }

 private:
  TraceSession* session_ = nullptr;
  TraceEvent event_;
};

}  // namespace hadar::obs

// HADAR_TRACE_SCOPE("cat", "name"[, min_detail]): anonymous ScopedSpan for
// the enclosing block. Define HADAR_OBS_NO_TRACING to compile every scope
// to nothing (the belt-and-braces kill switch; the runtime gate is already
// one branch).
#ifdef HADAR_OBS_NO_TRACING
#define HADAR_TRACE_SCOPE(...) ((void)0)
#else
#define HADAR_OBS_CONCAT2(a, b) a##b
#define HADAR_OBS_CONCAT(a, b) HADAR_OBS_CONCAT2(a, b)
#define HADAR_TRACE_SCOPE(...) \
  ::hadar::obs::ScopedSpan HADAR_OBS_CONCAT(hadar_trace_scope_, __LINE__)(__VA_ARGS__)
#endif
