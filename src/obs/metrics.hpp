// Named metrics for the observability layer: monotonic counters, gauges,
// and fixed-bucket histograms. Handles returned by the registry are stable
// for the registry's lifetime and updatable lock-free from any thread;
// registration (the first lookup of a name) takes a mutex.
//
// Naming convention: dotted lowercase "<subsystem>.<what>", e.g.
// "solver.warm_hits", "round.preemptions", "find_alloc.candidates_scanned".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hadar::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depth, beam size, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  /// Ascending upper bounds; counts has one extra overflow bucket, so
  /// counts[i] is the number of observations with value <= bounds[i] (and
  /// above bounds[i-1]), counts.back() the ones above bounds.back().
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram. Bucket i holds observations in
/// (bounds[i-1], bounds[i]]; values above the last bound land in the
/// overflow bucket. Bucket counts and the running sum are atomics, so
/// concurrent observe() calls are race-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// One named value in a registry snapshot, name-sorted for stable output.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;            ///< counter/gauge value; histogram total
  HistogramSnapshot histogram;   ///< populated for kHistogram only
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. A name registered as one kind
  /// must not be reused as another (throws std::invalid_argument).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be non-empty and strictly ascending; only the first
  /// registration's bounds are used.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Name-sorted snapshot of every registered metric.
  std::vector<MetricValue> snapshot() const;

  /// {"name": value, ...} with histograms expanded to bucket arrays.
  std::string to_json() const;
  /// "metric,kind,value" rows; histograms add one "name.le_<bound>" row per
  /// bucket plus "name.sum".
  std::string to_csv() const;

  /// Zeroes counters and gauges and clears histogram buckets; instruments
  /// stay registered and previously returned handles stay valid.
  void reset();

 private:
  struct Entry {
    MetricValue::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Accumulates one CSV row of registry values per sample() call — the
/// per-round metrics export. Columns are fixed at the first sample; metrics
/// registered later are ignored (they'd shift the header mid-file).
class MetricsCsvSampler {
 public:
  explicit MetricsCsvSampler(const MetricsRegistry* registry) : registry_(registry) {}

  void sample(double sim_time);
  /// Header + one line per sample; empty string when nothing was sampled.
  std::string csv() const;
  std::size_t rows() const { return rows_; }

 private:
  const MetricsRegistry* registry_;
  std::vector<std::string> columns_;
  std::string body_;
  std::size_t rows_ = 0;
};

}  // namespace hadar::obs
