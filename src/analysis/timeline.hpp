// ASCII Gantt rendering of a simulation's event log: one row per job, time
// bucketed into fixed-width cells, showing queued / running / paused phases
// and reallocation points. Used by examples and handy when debugging
// scheduler behavior.
#pragma once

#include <string>

#include "sim/event_log.hpp"
#include "workload/job.hpp"

namespace hadar::analysis {

struct GanttOptions {
  int width = 72;        ///< time cells per row
  int max_jobs = 40;     ///< rows rendered (first N jobs by id)
  char queued = '.';     ///< arrived, never started yet
  char running = '#';    ///< holding an allocation
  char paused = '-';     ///< preempted
  char realloc = '+';    ///< round where the placement changed
  char done = ' ';       ///< after completion
};

/// Renders the log of one finished run. Requires the simulation to have
/// been run with `enable_event_log`.
std::string ascii_gantt(const sim::EventLog& log, const workload::Trace& trace,
                        const GanttOptions& opts = {});

}  // namespace hadar::analysis
