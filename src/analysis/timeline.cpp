#include "analysis/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/time_format.hpp"

namespace hadar::analysis {
namespace {

enum class Phase { kNotArrived, kQueued, kRunning, kPaused, kDone };

struct Change {
  Seconds time;
  Phase phase;
  bool realloc_mark = false;
};

}  // namespace

std::string ascii_gantt(const sim::EventLog& log, const workload::Trace& trace,
                        const GanttOptions& opts) {
  if (opts.width <= 0) return {};

  // Phase-change list per job, from the event stream.
  std::map<JobId, std::vector<Change>> changes;
  Seconds horizon = 0.0;
  for (const auto& e : log.sorted()) {
    horizon = std::max(horizon, e.time);
    switch (e.kind) {
      case sim::EventKind::kArrival:
        changes[e.job].push_back({e.time, Phase::kQueued});
        break;
      case sim::EventKind::kStart:
        changes[e.job].push_back({e.time, Phase::kRunning});
        break;
      case sim::EventKind::kReallocate:
      case sim::EventKind::kResume:
        changes[e.job].push_back({e.time, Phase::kRunning, /*realloc=*/true});
        break;
      case sim::EventKind::kPreempt:
      case sim::EventKind::kKill:
        changes[e.job].push_back({e.time, Phase::kPaused});
        break;
      case sim::EventKind::kFinish:
        changes[e.job].push_back({e.time, Phase::kDone});
        break;
      case sim::EventKind::kStraggler:
        break;  // not a phase change
      case sim::EventKind::kNodeDown:
      case sim::EventKind::kNodeUp:
      case sim::EventKind::kGpuDegrade:
      case sim::EventKind::kGpuRestore:
        break;  // cluster-level, no job row
    }
  }
  if (horizon <= 0.0) return "(empty event log)\n";

  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "time: 0 .. %s, one cell = %s\n",
                common::format_sim_time(horizon).c_str(),
                common::format_sim_time(horizon / opts.width).c_str());
  out += buf;

  int rows = 0;
  for (const auto& job : trace.jobs) {
    if (rows++ >= opts.max_jobs) {
      out += "... (" + std::to_string(trace.jobs.size() - static_cast<std::size_t>(opts.max_jobs)) +
             " more jobs)\n";
      break;
    }
    const auto it = changes.find(job.id);
    std::snprintf(buf, sizeof(buf), "J%-4d W=%-2d |", job.id, job.num_workers);
    out += buf;

    std::string row(static_cast<std::size_t>(opts.width), opts.done);
    Phase phase = Phase::kNotArrived;
    std::size_t next_change = 0;
    const auto& ch = it != changes.end() ? it->second : std::vector<Change>{};
    for (int c = 0; c < opts.width; ++c) {
      const Seconds cell_start = horizon * c / opts.width;
      const Seconds cell_end = horizon * (c + 1) / opts.width;
      bool realloc_here = false;
      while (next_change < ch.size() && ch[next_change].time < cell_end) {
        phase = ch[next_change].phase;
        realloc_here |= ch[next_change].realloc_mark && ch[next_change].time >= cell_start;
        ++next_change;
      }
      char glyph = opts.done;
      switch (phase) {
        case Phase::kNotArrived: glyph = ' '; break;
        case Phase::kQueued: glyph = opts.queued; break;
        case Phase::kRunning: glyph = realloc_here ? opts.realloc : opts.running; break;
        case Phase::kPaused: glyph = opts.paused; break;
        case Phase::kDone: glyph = opts.done; break;
      }
      row[static_cast<std::size_t>(c)] = glyph;
    }
    out += row;
    out += "|\n";
  }
  out += "legend: '" + std::string(1, opts.queued) + "' queued  '" +
         std::string(1, opts.running) + "' running  '" + std::string(1, opts.realloc) +
         "' reallocated  '" + std::string(1, opts.paused) + "' preempted\n";
  return out;
}

}  // namespace hadar::analysis
