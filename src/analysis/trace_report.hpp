// ASCII per-round time-breakdown summarizer over a recorded trace: where
// each scheduling round's wall time went — LP/solver work ("solve"),
// placement search ("placement"), or everything else ("bookkeeping") — per
// scheduler. This is the terminal-friendly companion to the Chrome JSON
// export: load the JSON into Perfetto for the zoomable view, print this for
// the numbers.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hadar::analysis {

/// One sim.round span with its self/descendant time bucketed.
struct RoundBreakdown {
  int round = -1;        ///< "round" arg of the sim.round span
  double sim_t = 0.0;    ///< simulation time at the round start (seconds)
  double total_us = 0.0; ///< wall duration of the round span
  double solve_us = 0.0;
  double placement_us = 0.0;
  double bookkeeping_us = 0.0;
};

/// All rounds of one sim.run (one scheduler driving one simulation).
struct SchedulerBreakdown {
  std::string scheduler;
  std::vector<RoundBreakdown> rounds;
  double total_us = 0.0;
  double solve_us = 0.0;
  double placement_us = 0.0;
  double bookkeeping_us = 0.0;
};

struct TraceReport {
  std::vector<SchedulerBreakdown> schedulers;  ///< one per sim.run span
};

/// Buckets a span's *self* time (duration minus same-thread children) by its
/// category: "lp", gavel.recompute, and the pipeline priority/allocation
/// stages count as solve; hadar.* search spans, tiresias queue maintenance,
/// the packing loops, and the pipeline placement/preemption stages count as
/// placement; everything else inside a round (admission included) is
/// bookkeeping. Exposed for tests.
enum class TimeBucket { kSolve, kPlacement, kBookkeeping };
TimeBucket bucket_of(const obs::TraceEvent& e);

/// Builds the per-round breakdown from a trace snapshot. Nesting is
/// reconstructed per thread by interval containment (a span's parent is the
/// smallest same-thread span enclosing it), so self times never double
/// count. Rounds are attributed to the sim.run span that contains them.
TraceReport build_trace_report(const std::vector<obs::TraceEvent>& events);

/// Renders the report as ASCII tables: up to `max_rounds` per-round rows per
/// scheduler (head and tail, elided middle) plus a totals summary line.
std::string render_trace_report(const TraceReport& report, int max_rounds = 20);

/// Convenience: build + render straight from a session.
std::string trace_report(const obs::TraceSession& session, int max_rounds = 20);

}  // namespace hadar::analysis
