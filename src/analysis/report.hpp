// Result exporters: CSV and Markdown renditions of scheduler comparisons and
// per-job outcome dumps, so experiment outputs can feed plots or notebooks
// without re-running simulations.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace hadar::analysis {

/// One scheduler's result under a shared workload.
struct NamedResult {
  std::string name;
  const sim::SimResult* result = nullptr;
};

/// CSV with one row per scheduler and the headline metrics
/// (avg/median/p95 JCT, makespan, utilizations, FTF, churn).
std::string comparison_csv(const std::vector<NamedResult>& runs);

/// The same comparison as a GitHub-flavored Markdown table.
std::string comparison_markdown(const std::vector<NamedResult>& runs);

/// CSV with one row per job of a single run: arrival, start, finish, jct,
/// queueing delay, gpu seconds, preemptions, reallocations, ftf.
std::string per_job_csv(const sim::SimResult& result);

}  // namespace hadar::analysis
