#include "analysis/trace_report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/table.hpp"
#include "common/time_format.hpp"

namespace hadar::analysis {
namespace {

// Containment tolerance: clock reads for a child can land a hair outside the
// parent's [ts, ts+dur] window when both were taken back to back.
constexpr double kNestEpsUs = 0.5;

struct Node {
  const obs::TraceEvent* e = nullptr;
  int parent = -1;
  double child_us = 0.0;  ///< summed durations of direct same-thread children
  int run = -1;           ///< index of the enclosing sim.run node, -1 if none
  int round = -1;         ///< index of the enclosing sim.round node, -1 if none
};

double arg_of(const obs::TraceEvent& e, const char* key, double def) {
  for (int i = 0; i < e.num_args; ++i) {
    if (std::strcmp(e.args[i].key, key) == 0) return e.args[i].value;
  }
  return def;
}

std::string fmt_us(double us) {
  char buf[48];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us * 1e-6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

std::string fmt_share(double part_us, double total_us) {
  char buf[48];
  const double pct = total_us > 0.0 ? 100.0 * part_us / total_us : 0.0;
  std::snprintf(buf, sizeof(buf), "%s (%.1f%%)", fmt_us(part_us).c_str(), pct);
  return buf;
}

}  // namespace

TimeBucket bucket_of(const obs::TraceEvent& e) {
  const std::string cat = e.cat;
  const std::string name = e.name;
  // Pipeline stage spans wrap the per-policy spans, so only their *self*
  // time lands here: priority (model refresh) and the allocation solve are
  // solve work, placement/preemption are placement work, admission is
  // bookkeeping.
  if (cat == "pipeline") {
    if (name == "stage.priority" || name == "stage.allocation") return TimeBucket::kSolve;
    if (name == "stage.placement" || name == "stage.preemption") {
      return TimeBucket::kPlacement;
    }
    return TimeBucket::kBookkeeping;
  }
  if (cat == "lp" || name == "gavel.recompute") return TimeBucket::kSolve;
  if (cat == "hadar" || cat == "tiresias" || cat == "yarn" || name == "gavel.pack") {
    return TimeBucket::kPlacement;
  }
  return TimeBucket::kBookkeeping;
}

TraceReport build_trace_report(const std::vector<obs::TraceEvent>& events) {
  // Complete spans only, grouped by thread.
  std::vector<Node> nodes;
  nodes.reserve(events.size());
  for (const auto& e : events) {
    if (e.phase == obs::TracePhase::kComplete) nodes.push_back(Node{&e});
  }
  std::map<std::uint32_t, std::vector<int>> by_tid;
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    by_tid[nodes[static_cast<std::size_t>(i)].e->tid].push_back(i);
  }

  // Reconstruct nesting per thread: after sorting by (start asc, dur desc) a
  // span's parent is the nearest stack entry whose interval contains it.
  for (auto& [tid, idxs] : by_tid) {
    (void)tid;
    std::sort(idxs.begin(), idxs.end(), [&](int a, int b) {
      const auto& ea = *nodes[static_cast<std::size_t>(a)].e;
      const auto& eb = *nodes[static_cast<std::size_t>(b)].e;
      if (ea.ts_us != eb.ts_us) return ea.ts_us < eb.ts_us;
      return ea.dur_us > eb.dur_us;
    });
    std::vector<int> stack;
    for (int i : idxs) {
      const auto& e = *nodes[static_cast<std::size_t>(i)].e;
      while (!stack.empty()) {
        const auto& top = *nodes[static_cast<std::size_t>(stack.back())].e;
        if (e.ts_us < top.ts_us + top.dur_us &&
            e.ts_us + e.dur_us <= top.ts_us + top.dur_us + kNestEpsUs) {
          break;  // contained: top is the parent
        }
        stack.pop_back();
      }
      if (!stack.empty()) {
        Node& n = nodes[static_cast<std::size_t>(i)];
        n.parent = stack.back();
        nodes[static_cast<std::size_t>(stack.back())].child_us += e.dur_us;
      }
      stack.push_back(i);
    }
  }

  // Propagate the enclosing run/round down the parent links (parents precede
  // children in each thread's sorted order, but node indices interleave
  // threads — resolve lazily by walking up).
  auto resolve = [&](int i, const char* want) {
    for (int p = nodes[static_cast<std::size_t>(i)].parent; p >= 0;
         p = nodes[static_cast<std::size_t>(p)].parent) {
      if (std::strcmp(nodes[static_cast<std::size_t>(p)].e->name, want) == 0) return p;
    }
    return -1;
  };
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    nodes[static_cast<std::size_t>(i)].run = resolve(i, "sim.run");
    nodes[static_cast<std::size_t>(i)].round = resolve(i, "sim.round");
  }

  // One SchedulerBreakdown per sim.run span, rounds keyed by their node.
  TraceReport report;
  std::map<int, int> run_slot;    // sim.run node -> report index
  std::map<int, int> round_slot;  // sim.round node -> round index in its run
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const auto& e = *nodes[static_cast<std::size_t>(i)].e;
    if (std::strcmp(e.name, "sim.run") != 0) continue;
    run_slot[i] = static_cast<int>(report.schedulers.size());
    SchedulerBreakdown sb;
    sb.scheduler = e.str_key != nullptr && std::strcmp(e.str_key, "scheduler") == 0
                       ? e.str_value
                       : "?";
    report.schedulers.push_back(std::move(sb));
  }
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    const auto& e = *n.e;
    if (std::strcmp(e.name, "sim.round") != 0 || n.run < 0) continue;
    auto& sb = report.schedulers[static_cast<std::size_t>(run_slot[n.run])];
    round_slot[i] = static_cast<int>(sb.rounds.size());
    RoundBreakdown rb;
    rb.round = static_cast<int>(arg_of(e, "round", -1.0));
    rb.sim_t = arg_of(e, "t", 0.0);
    rb.total_us = e.dur_us;
    sb.rounds.push_back(rb);
  }

  // Bucket every span's self time into its enclosing round.
  for (const Node& n : nodes) {
    if (n.round < 0 && std::strcmp(n.e->name, "sim.round") != 0) continue;
    const int round_node = std::strcmp(n.e->name, "sim.round") == 0
                               ? static_cast<int>(&n - nodes.data())
                               : n.round;
    const Node& rn = nodes[static_cast<std::size_t>(round_node)];
    if (rn.run < 0) continue;
    auto& sb = report.schedulers[static_cast<std::size_t>(run_slot[rn.run])];
    auto& rb = sb.rounds[static_cast<std::size_t>(round_slot[round_node])];
    const double self_us = std::max(0.0, n.e->dur_us - n.child_us);
    switch (bucket_of(*n.e)) {
      case TimeBucket::kSolve: rb.solve_us += self_us; break;
      case TimeBucket::kPlacement: rb.placement_us += self_us; break;
      case TimeBucket::kBookkeeping: rb.bookkeeping_us += self_us; break;
    }
  }

  for (auto& sb : report.schedulers) {
    std::sort(sb.rounds.begin(), sb.rounds.end(),
              [](const RoundBreakdown& a, const RoundBreakdown& b) {
                return a.round < b.round;
              });
    for (const auto& rb : sb.rounds) {
      sb.total_us += rb.total_us;
      sb.solve_us += rb.solve_us;
      sb.placement_us += rb.placement_us;
      sb.bookkeeping_us += rb.bookkeeping_us;
    }
  }
  return report;
}

std::string render_trace_report(const TraceReport& report, int max_rounds) {
  std::string out;
  if (report.schedulers.empty()) return "(trace contains no sim.run spans)\n";
  for (const auto& sb : report.schedulers) {
    common::AsciiTable t("round time breakdown — " + sb.scheduler,
                         {"round", "sim t", "total", "solve", "placement", "bookkeeping"});
    const int n = static_cast<int>(sb.rounds.size());
    const int shown = std::min(n, max_rounds);
    for (int i = 0; i < shown; ++i) {
      const auto& rb = sb.rounds[static_cast<std::size_t>(i)];
      t.add_row({std::to_string(rb.round), common::format_sim_time(rb.sim_t),
                 fmt_us(rb.total_us), fmt_share(rb.solve_us, rb.total_us),
                 fmt_share(rb.placement_us, rb.total_us),
                 fmt_share(rb.bookkeeping_us, rb.total_us)});
    }
    if (n > shown) {
      std::string more = "(";
      more += std::to_string(n - shown);
      more += " more)";
      t.add_row({"...", std::move(more), "", "", "", ""});
    }
    t.add_row({"all", std::to_string(n) + " rounds", fmt_us(sb.total_us),
               fmt_share(sb.solve_us, sb.total_us),
               fmt_share(sb.placement_us, sb.total_us),
               fmt_share(sb.bookkeeping_us, sb.total_us)});
    out += t.render();
    out += '\n';
  }
  return out;
}

std::string trace_report(const obs::TraceSession& session, int max_rounds) {
  return render_trace_report(build_trace_report(session.snapshot()), max_rounds);
}

}  // namespace hadar::analysis
