#include "analysis/report.hpp"

#include <stdexcept>

#include "common/csv.hpp"

namespace hadar::analysis {
namespace {

using common::CsvWriter;

const std::vector<std::string> kMetricHeader = {
    "scheduler",     "avg_jct_s",  "median_jct_s",    "p95_jct_s",
    "makespan_s",    "avg_queueing_s", "gpu_utilization", "avg_job_utilization",
    "avg_ftf",       "max_ftf",    "preemptions",     "reallocations",
    "realloc_round_fraction", "deadline_attainment", "avg_tardiness_s", "max_tardiness_s",
    "tenants"};

std::vector<std::string> metric_row(const NamedResult& run) {
  if (run.result == nullptr) throw std::invalid_argument("NamedResult: null result");
  const auto& r = *run.result;
  return {run.name,
          CsvWriter::field(r.avg_jct),
          CsvWriter::field(r.median_jct),
          CsvWriter::field(r.p95_jct),
          CsvWriter::field(r.makespan),
          CsvWriter::field(r.avg_queueing_delay),
          CsvWriter::field(r.gpu_utilization),
          CsvWriter::field(r.avg_job_utilization),
          CsvWriter::field(r.avg_ftf),
          CsvWriter::field(r.max_ftf),
          CsvWriter::field(static_cast<long long>(r.total_preemptions)),
          CsvWriter::field(static_cast<long long>(r.total_reallocations)),
          CsvWriter::field(r.realloc_round_fraction),
          CsvWriter::field(r.deadline_attainment),
          CsvWriter::field(r.avg_tardiness),
          CsvWriter::field(r.max_tardiness),
          CsvWriter::field(static_cast<long long>(r.tenant_shares.size()))};
}

}  // namespace

std::string comparison_csv(const std::vector<NamedResult>& runs) {
  CsvWriter w(kMetricHeader);
  for (const auto& run : runs) w.add_row(metric_row(run));
  return w.to_string();
}

std::string comparison_markdown(const std::vector<NamedResult>& runs) {
  std::string out = "| ";
  for (std::size_t c = 0; c < kMetricHeader.size(); ++c) {
    out += kMetricHeader[c] + " | ";
  }
  out += "\n|";
  for (std::size_t c = 0; c < kMetricHeader.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& run : runs) {
    out += "| ";
    for (const auto& cell : metric_row(run)) out += cell + " | ";
    out += "\n";
  }
  return out;
}

std::string per_job_csv(const sim::SimResult& result) {
  CsvWriter w({"job", "arrival_s", "first_start_s", "finish_s", "jct_s", "queueing_s",
               "gpu_seconds", "compute_gpu_seconds", "rounds_run", "preemptions",
               "reallocations", "ftf", "deadline_s", "tardiness_s", "tenant"});
  for (const auto& j : result.jobs) {
    w.add_row({CsvWriter::field(static_cast<long long>(j.id)),
               CsvWriter::field(j.arrival),
               CsvWriter::field(j.first_start),
               CsvWriter::field(j.finish),
               CsvWriter::field(j.finished() ? j.jct() : -1.0),
               CsvWriter::field(j.first_start >= 0.0 ? j.queueing_delay() : -1.0),
               CsvWriter::field(j.gpu_seconds),
               CsvWriter::field(j.compute_gpu_seconds),
               CsvWriter::field(static_cast<long long>(j.rounds_run)),
               CsvWriter::field(static_cast<long long>(j.preemptions)),
               CsvWriter::field(static_cast<long long>(j.reallocations)),
               CsvWriter::field(j.ftf),
               CsvWriter::field(j.deadline),
               CsvWriter::field(j.tardiness),
               CsvWriter::field(static_cast<long long>(j.tenant))});
  }
  return w.to_string();
}

}  // namespace hadar::analysis
