#include "workload/trace_gen.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::workload {

TraceGenerator::TraceGenerator(const ModelZoo* zoo, const cluster::GpuTypeRegistry* registry)
    : zoo_(zoo), registry_(registry) {
  if (zoo_ == nullptr || registry_ == nullptr) {
    throw std::invalid_argument("TraceGenerator: null dependency");
  }
}

namespace {

void validate_config(const TraceGenConfig& cfg) {
  if (cfg.worker_counts.size() != cfg.worker_weights.size() || cfg.worker_counts.empty()) {
    throw std::invalid_argument("TraceGenerator: worker count/weight mismatch");
  }
  if (cfg.arrivals == ArrivalPattern::kContinuous && cfg.jobs_per_hour <= 0.0) {
    throw std::invalid_argument("TraceGenerator: non-positive arrival rate");
  }
  if (cfg.diurnal_amplitude < 0.0 || cfg.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("TraceGenerator: diurnal_amplitude must be in [0,1)");
  }
  if (cfg.deadline_fraction < 0.0 || cfg.deadline_fraction > 1.0) {
    throw std::invalid_argument("TraceGenerator: deadline_fraction must be in [0,1]");
  }
  if (cfg.deadline_fraction > 0.0 &&
      (cfg.deadline_slack_lo <= 0.0 || cfg.deadline_slack_hi < cfg.deadline_slack_lo)) {
    throw std::invalid_argument("TraceGenerator: bad deadline slack range");
  }
  if (cfg.num_tenants < 1) throw std::invalid_argument("TraceGenerator: num_tenants < 1");
}

/// Stream salt for the deadline/tenant draws: forked separately from the
/// main per-job stream so enabling the knobs never shifts the base trace.
constexpr std::uint64_t kSloSalt = 0x510dead114e57a9cULL;

SizeClass pick_class(common::Rng& rng, const TraceGenConfig& cfg) {
  const std::vector<double> w = {cfg.small_weight, cfg.medium_weight, cfg.large_weight,
                                 cfg.xlarge_weight};
  switch (rng.weighted_index(w)) {
    case 0: return SizeClass::kSmall;
    case 1: return SizeClass::kMedium;
    case 2: return SizeClass::kLarge;
    default: return SizeClass::kXLarge;
  }
}

std::pair<double, double> class_range(const TraceGenConfig& cfg, SizeClass c) {
  switch (c) {
    case SizeClass::kSmall: return {cfg.small_lo, cfg.small_hi};
    case SizeClass::kMedium: return {cfg.medium_lo, cfg.medium_hi};
    case SizeClass::kLarge: return {cfg.large_lo, cfg.large_hi};
    case SizeClass::kXLarge: return {cfg.xlarge_lo, cfg.xlarge_hi};
  }
  return {cfg.small_lo, cfg.small_hi};
}

}  // namespace

TraceStream::TraceStream(const ModelZoo* zoo, const cluster::GpuTypeRegistry* registry,
                         TraceGenConfig cfg)
    : zoo_(zoo), registry_(registry), cfg_(std::move(cfg)) {
  if (zoo_ == nullptr || registry_ == nullptr) {
    throw std::invalid_argument("TraceStream: null dependency");
  }
  validate_config(cfg_);
}

JobSpec TraceStream::next() {
  // Every draw for job i comes from a stream forked from (seed, i), so the
  // job is a pure function of (config, index) and the running Poisson clock
  // — the step-invariance contract.
  common::Rng rng(common::mix64(cfg_.seed, static_cast<std::uint64_t>(index_)));

  const SizeClass cls = pick_class(rng, cfg_);

  const ModelProfile* profile = nullptr;
  if (cfg_.fixed_model) {
    profile = zoo_->find(*cfg_.fixed_model);
    if (profile == nullptr) {
      throw std::invalid_argument("TraceStream: unknown fixed model " + *cfg_.fixed_model);
    }
  } else {
    auto candidates = zoo_->by_size(cls);
    if (candidates.empty()) {
      // No Table II model in this class (cannot happen with paper_default,
      // but custom zoos may be sparse): fall back to any model.
      for (int m = 0; m < zoo_->size(); ++m) candidates.push_back(&zoo_->profile(m));
    }
    profile = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  }

  const int workers = cfg_.worker_counts[rng.weighted_index(cfg_.worker_weights)];

  // Log-uniform GPU-hours within the class range, converted to an ideal
  // runtime (all workers on the fastest type).
  const auto [lo, hi] = class_range(cfg_, cls);
  const double gpu_hours = std::exp(rng.uniform(std::log(lo), std::log(hi)));
  const Seconds ideal_runtime = gpu_hours * 3600.0 / workers;

  Seconds arrival = 0.0;
  if (cfg_.arrivals == ArrivalPattern::kContinuous) {
    if (cfg_.diurnal_amplitude > 0.0) {
      // Thinning: candidate events at the peak rate, accepted with the
      // instantaneous relative intensity. The variable number of rejected
      // candidates only consumes this job's forked stream.
      const double peak = cfg_.jobs_per_hour * (1.0 + cfg_.diurnal_amplitude) / 3600.0;
      for (;;) {
        clock_ += rng.exponential(peak);
        const double rel = (1.0 + cfg_.diurnal_amplitude *
                                      std::sin(2.0 * std::numbers::pi * clock_ / 86400.0)) /
                           (1.0 + cfg_.diurnal_amplitude);
        if (rng.uniform() < rel) break;
      }
    } else {
      clock_ += rng.exponential(cfg_.jobs_per_hour / 3600.0);
    }
    arrival = clock_;
  }

  JobSpec job = zoo_->make_job(profile->name, *registry_, workers, ideal_runtime, arrival);
  job.size_class = cls;
  job.id = static_cast<JobId>(index_);

  if (cfg_.deadline_fraction > 0.0 || cfg_.num_tenants > 1) {
    common::Rng slo(common::mix64(cfg_.seed ^ kSloSalt, static_cast<std::uint64_t>(index_)));
    if (cfg_.num_tenants > 1) {
      job.tenant = static_cast<int>(slo.uniform_int(0, cfg_.num_tenants - 1));
    }
    if (cfg_.deadline_fraction > 0.0 && slo.uniform() < cfg_.deadline_fraction) {
      const double slack = slo.uniform(cfg_.deadline_slack_lo, cfg_.deadline_slack_hi);
      const Seconds base = job.min_runtime();
      job.deadline = job.arrival + slack * (base == kInfiniteTime ? ideal_runtime : base);
    }
  }

  ++index_;
  return job;
}

void TraceStream::save(common::BinaryWriter& w) const {
  w.i32(index_);
  w.f64(clock_);
}

void TraceStream::restore(common::BinaryReader& r) {
  index_ = r.i32();
  clock_ = r.f64();
}

Trace TraceGenerator::generate(const TraceGenConfig& cfg) const {
  if (cfg.num_jobs <= 0) throw std::invalid_argument("TraceGenerator: num_jobs <= 0");
  validate_config(cfg);

  TraceStream stream(zoo_, registry_, cfg);
  Trace trace;
  trace.jobs.reserve(static_cast<std::size_t>(cfg.num_jobs));
  for (int i = 0; i < cfg.num_jobs; ++i) trace.jobs.push_back(stream.next());
  trace.finalize();
  return trace;
}

Trace TraceGenerator::prototype_workload(std::uint64_t seed) const {
  common::Rng rng(seed);
  // Two jobs per Table II model, 10 total, sized so the whole batch finishes
  // in hours on the 8-GPU prototype (the paper's ImageNet is downscaled the
  // same way).
  const std::vector<std::pair<std::string, double>> plan = {
      {"ResNet-50", 2.2}, {"ResNet-50", 1.6}, {"ResNet-18", 0.4}, {"ResNet-18", 0.3},
      {"LSTM", 1.2},      {"LSTM", 0.9},      {"CycleGAN", 0.8},  {"CycleGAN", 0.6},
      {"Transformer", 1.1}, {"Transformer", 0.8}};
  Trace trace;
  for (const auto& [model, hours] : plan) {
    // Gangs of 1-2: each AWS pool holds only two devices of a type, and the
    // job-level baselines (Gavel) can never place a wider homogeneous gang.
    const int workers = static_cast<int>(rng.uniform_int(1, 2));
    trace.jobs.push_back(
        zoo_->make_job(model, *registry_, workers, hours * 3600.0, /*arrival=*/0.0));
  }
  trace.finalize();
  return trace;
}

}  // namespace hadar::workload
