#include "workload/model_zoo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hadar::workload {

ModelZoo::ModelZoo(std::vector<ModelProfile> profiles) : profiles_(std::move(profiles)) {
  for (const auto& p : profiles_) {
    if (p.name.empty()) throw std::invalid_argument("ModelZoo: empty model name");
    if (p.throughput.empty()) throw std::invalid_argument("ModelZoo: no throughput entries");
    if (p.chunks_per_epoch <= 0) throw std::invalid_argument("ModelZoo: chunks_per_epoch <= 0");
  }
}

const ModelProfile& ModelZoo::profile(int i) const {
  if (i < 0 || i >= size()) throw std::out_of_range("ModelZoo::profile");
  return profiles_[static_cast<std::size_t>(i)];
}

const ModelProfile* ModelZoo::find(const std::string& name) const {
  for (const auto& p : profiles_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<const ModelProfile*> ModelZoo::by_size(SizeClass c) const {
  std::vector<const ModelProfile*> out;
  for (const auto& p : profiles_) {
    if (p.size_class == c) out.push_back(&p);
  }
  return out;
}

std::vector<double> ModelZoo::throughput_vector(const ModelProfile& p,
                                                const cluster::GpuTypeRegistry& reg) const {
  std::vector<double> xs(static_cast<std::size_t>(reg.size()), 0.0);
  for (const auto& [type_name, rate] : p.throughput) {
    const GpuTypeId r = reg.find(type_name);
    if (r != kInvalidGpuType) xs[static_cast<std::size_t>(r)] = rate;
  }
  return xs;
}

JobSpec ModelZoo::make_job(const std::string& model, const cluster::GpuTypeRegistry& reg,
                           int num_workers, Seconds ideal_runtime, Seconds arrival) const {
  const ModelProfile* p = find(model);
  if (p == nullptr) throw std::invalid_argument("ModelZoo::make_job: unknown model " + model);
  if (num_workers <= 0) throw std::invalid_argument("ModelZoo::make_job: num_workers <= 0");
  if (ideal_runtime <= 0.0) throw std::invalid_argument("ModelZoo::make_job: runtime <= 0");

  JobSpec job;
  job.model = p->name;
  job.arrival = arrival;
  job.num_workers = num_workers;
  job.chunks_per_epoch = p->chunks_per_epoch;
  job.throughput = throughput_vector(*p, reg);
  job.checkpoint_save = p->checkpoint_save;
  job.checkpoint_load = p->checkpoint_load;
  job.model_size_mb = p->model_size_mb;
  job.size_class = p->size_class;

  double best = 0.0;
  for (double v : job.throughput) best = std::max(best, v);
  if (best <= 0.0) {
    throw std::invalid_argument("ModelZoo::make_job: model cannot run on any cluster type");
  }
  const double total_iters = ideal_runtime * best * num_workers;
  job.epochs = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(total_iters / static_cast<double>(p->chunks_per_epoch))));
  job.validate(reg.size());
  return job;
}

ModelZoo ModelZoo::paper_default() {
  // Rates are per-worker iterations/second. Ratios encode the published
  // heterogeneity spreads; Table IV supplies the checkpoint costs
  // (save = "w/o reallocation" overhead x 360 s round; save+load = "w/").
  std::vector<ModelProfile> ps;
  ps.push_back({"ResNet-50", "Image Classification", "ImageNet", SizeClass::kXLarge,
                {{"V100", 3.0}, {"P100", 1.4}, {"K80", 0.3}, {"T4", 1.7}, {"K520", 0.25}},
                5004, 1.19, 6.37, 102.0});
  ps.push_back({"ResNet-18", "Image Classification", "CIFAR-10", SizeClass::kSmall,
                {{"V100", 40.0}, {"P100", 21.0}, {"K80", 8.0}, {"T4", 26.0}, {"K520", 6.5}},
                390, 0.76, 3.88, 45.0});
  ps.push_back({"LSTM", "Language Modeling", "Wikitext-2", SizeClass::kLarge,
                {{"V100", 12.0}, {"P100", 6.8}, {"K80", 2.4}, {"T4", 7.6}, {"K520", 2.0}},
                1327, 3.13, 4.11, 210.0});
  ps.push_back({"CycleGAN", "Image-to-Image Translation", "Monet2photo", SizeClass::kMedium,
                {{"V100", 1.2}, {"P100", 0.65}, {"K80", 0.23}, {"T4", 0.75}, {"K520", 0.19}},
                1334, 0.47, 1.98, 44.0});
  ps.push_back({"Transformer", "Language Translation", "Multi30K", SizeClass::kLarge,
                {{"V100", 6.0}, {"P100", 3.1}, {"K80", 0.8}, {"T4", 3.4}, {"K520", 0.7}},
                906, 0.61, 1.95, 240.0});
  // Extra (not in Table II): an A3C-style RL model with the intro's ~2x
  // V100:K80 spread. Used by heterogeneity ablations; the trace generator
  // never samples it unless asked.
  ps.push_back({"A3C", "Reinforcement Learning", "Atari-Pong", SizeClass::kSmall,
                {{"V100", 20.0}, {"P100", 16.0}, {"K80", 10.0}, {"T4", 17.0}, {"K520", 9.0}},
                1000, 0.30, 0.90, 6.0});
  return ModelZoo(std::move(ps));
}

}  // namespace hadar::workload
