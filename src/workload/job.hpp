// DNN training job model (Table I of the paper): a job j arrives at a_j,
// requests W_j workers, trains E_j epochs of N_j data chunks each, and runs
// at X_j^r iterations/second per worker on a type-r accelerator.
#pragma once

#include <string>
#include <vector>

#include "cluster/gpu_type.hpp"
#include "common/types.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::workload {

/// GPU-time size classes used to synthesize the Microsoft trace workloads
/// (Sec. IV-A): Small 0-1, Medium 1-10, Large 10-50, XLarge 60-100 GPU-hours.
enum class SizeClass { kSmall, kMedium, kLarge, kXLarge };

const char* to_string(SizeClass c);

/// Immutable description of one training job.
struct JobSpec {
  JobId id = kInvalidJob;
  std::string model;                 ///< Table II model name, e.g. "ResNet-50"
  Seconds arrival = 0.0;             ///< a_j
  int num_workers = 1;               ///< W_j (gang size)
  std::int64_t epochs = 1;           ///< E_j
  std::int64_t chunks_per_epoch = 1; ///< N_j (iterations per epoch)
  std::vector<double> throughput;    ///< X_j^r, iterations/s per worker, per type id
  Seconds checkpoint_save = 1.0;     ///< periodic checkpoint cost per round
  Seconds checkpoint_load = 9.0;     ///< extra cost when the allocation changed
  double model_size_mb = 100.0;      ///< DNN parameter size (network/ckpt models)
  SizeClass size_class = SizeClass::kSmall;
  Seconds deadline = 0.0;            ///< absolute completion deadline; <= 0 means none
  int tenant = 0;                    ///< owning tenant id (quota accounting); 0 = default

  /// True when the job carries an SLO deadline.
  bool has_deadline() const { return deadline > 0.0; }

  /// Total work E_j * N_j in iterations.
  double total_iterations() const {
    return static_cast<double>(epochs) * static_cast<double>(chunks_per_epoch);
  }

  double throughput_on(GpuTypeId r) const {
    return (r >= 0 && static_cast<std::size_t>(r) < throughput.size())
               ? throughput[static_cast<std::size_t>(r)]
               : 0.0;
  }

  /// Fastest / slowest per-worker rate across types with nonzero rate.
  double max_throughput() const;
  double min_throughput() const;

  /// t_j^min / t_j^max (Eq. 8): runtime with all W_j workers on the fastest /
  /// slowest device type.
  Seconds min_runtime() const;
  Seconds max_runtime() const;

  /// Throws std::invalid_argument when any field is inconsistent (W<=0,
  /// no positive throughput, ...). Called by the trace loaders.
  void validate(int num_types) const;

  /// Bit-exact persistence (changelog records, engine snapshots).
  void save(common::BinaryWriter& w) const;
  static JobSpec restore(common::BinaryReader& r);

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// A trace is an arrival-ordered list of jobs with dense ids.
struct Trace {
  std::vector<JobSpec> jobs;

  /// Sorts by arrival and reassigns dense ids in arrival order.
  void finalize();

  /// Sum over jobs of W_j * ideal runtime, in GPU-hours (load indicator).
  double total_gpu_hours() const;
};

}  // namespace hadar::workload
