// CSV persistence for traces so experiments can be re-run bit-identically
// from a saved workload file.
//
// Format (one row per job):
//   id,model,arrival_s,workers,epochs,chunks_per_epoch,size_class,
//   ckpt_save_s,ckpt_load_s,model_size_mb,x_<TYPE>...,deadline_s,tenant
// (one x_ column per GPU type). The trailing deadline_s/tenant columns are
// optional on read: legacy CSVs without them load with no deadline and
// tenant 0.
#pragma once

#include <string>

#include "cluster/gpu_type.hpp"
#include "workload/job.hpp"

namespace hadar::workload {

/// Serializes a trace to CSV text.
std::string trace_to_csv(const Trace& trace, const cluster::GpuTypeRegistry& reg);

/// Parses CSV text back into a trace. Throws std::runtime_error on malformed
/// input or when the x_ columns do not cover the registry's types.
Trace trace_from_csv(const std::string& text, const cluster::GpuTypeRegistry& reg);

/// File wrappers. write returns false on I/O error; read throws.
bool write_trace_file(const std::string& path, const Trace& trace,
                      const cluster::GpuTypeRegistry& reg);
Trace read_trace_file(const std::string& path, const cluster::GpuTypeRegistry& reg);

}  // namespace hadar::workload
