#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"

namespace hadar::workload {
namespace {

SizeClass size_class_from_string(const std::string& s) {
  if (s == "S") return SizeClass::kSmall;
  if (s == "M") return SizeClass::kMedium;
  if (s == "L") return SizeClass::kLarge;
  if (s == "XL") return SizeClass::kXLarge;
  throw std::runtime_error("trace_from_csv: bad size class '" + s + "'");
}

double to_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace_from_csv: bad ") + what + " '" + s + "'");
  }
}

long long to_ll(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace_from_csv: bad ") + what + " '" + s + "'");
  }
}

}  // namespace

std::string trace_to_csv(const Trace& trace, const cluster::GpuTypeRegistry& reg) {
  std::vector<std::string> header = {"id",     "model",          "arrival_s", "workers",
                                     "epochs", "chunks_per_epoch", "size_class",
                                     "ckpt_save_s", "ckpt_load_s", "model_size_mb"};
  for (int r = 0; r < reg.size(); ++r) header.push_back("x_" + reg.name(r));
  header.push_back("deadline_s");
  header.push_back("tenant");

  common::CsvWriter w(header);
  for (const auto& j : trace.jobs) {
    std::vector<std::string> row = {
        common::CsvWriter::field(static_cast<long long>(j.id)),
        j.model,
        common::CsvWriter::field(j.arrival),
        common::CsvWriter::field(static_cast<long long>(j.num_workers)),
        common::CsvWriter::field(static_cast<long long>(j.epochs)),
        common::CsvWriter::field(static_cast<long long>(j.chunks_per_epoch)),
        to_string(j.size_class),
        common::CsvWriter::field(j.checkpoint_save),
        common::CsvWriter::field(j.checkpoint_load),
        common::CsvWriter::field(j.model_size_mb)};
    for (int r = 0; r < reg.size(); ++r) {
      row.push_back(common::CsvWriter::field(j.throughput_on(r)));
    }
    row.push_back(common::CsvWriter::field(j.deadline));
    row.push_back(common::CsvWriter::field(static_cast<long long>(j.tenant)));
    w.add_row(std::move(row));
  }
  return w.to_string();
}

Trace trace_from_csv(const std::string& text, const cluster::GpuTypeRegistry& reg) {
  const common::CsvDocument doc = common::parse_csv(text);
  auto col = [&](const std::string& name) {
    const int c = doc.column(name);
    if (c < 0) throw std::runtime_error("trace_from_csv: missing column " + name);
    return static_cast<std::size_t>(c);
  };

  const auto c_model = col("model");
  const auto c_arrival = col("arrival_s");
  const auto c_workers = col("workers");
  const auto c_epochs = col("epochs");
  const auto c_chunks = col("chunks_per_epoch");
  const auto c_size = col("size_class");
  const auto c_save = col("ckpt_save_s");
  const auto c_load = col("ckpt_load_s");
  const auto c_msize = col("model_size_mb");
  std::vector<std::size_t> c_x;
  for (int r = 0; r < reg.size(); ++r) c_x.push_back(col("x_" + reg.name(r)));
  // Optional trailing columns: legacy traces predate deadlines and tenants.
  const int c_deadline = doc.column("deadline_s");
  const int c_tenant = doc.column("tenant");

  Trace trace;
  for (const auto& row : doc.rows) {
    JobSpec j;
    j.model = row.at(c_model);
    j.arrival = to_double(row.at(c_arrival), "arrival");
    j.num_workers = static_cast<int>(to_ll(row.at(c_workers), "workers"));
    j.epochs = to_ll(row.at(c_epochs), "epochs");
    j.chunks_per_epoch = to_ll(row.at(c_chunks), "chunks_per_epoch");
    j.size_class = size_class_from_string(row.at(c_size));
    j.checkpoint_save = to_double(row.at(c_save), "ckpt_save_s");
    j.checkpoint_load = to_double(row.at(c_load), "ckpt_load_s");
    j.model_size_mb = to_double(row.at(c_msize), "model_size_mb");
    j.throughput.resize(static_cast<std::size_t>(reg.size()));
    for (int r = 0; r < reg.size(); ++r) {
      j.throughput[static_cast<std::size_t>(r)] =
          to_double(row.at(c_x[static_cast<std::size_t>(r)]), "throughput");
    }
    if (c_deadline >= 0 && static_cast<std::size_t>(c_deadline) < row.size()) {
      j.deadline = to_double(row[static_cast<std::size_t>(c_deadline)], "deadline_s");
    }
    if (c_tenant >= 0 && static_cast<std::size_t>(c_tenant) < row.size()) {
      j.tenant = static_cast<int>(to_ll(row[static_cast<std::size_t>(c_tenant)], "tenant"));
    }
    j.validate(reg.size());
    trace.jobs.push_back(std::move(j));
  }
  trace.finalize();
  return trace;
}

bool write_trace_file(const std::string& path, const Trace& trace,
                      const cluster::GpuTypeRegistry& reg) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << trace_to_csv(trace, reg);
  return static_cast<bool>(f);
}

Trace read_trace_file(const std::string& path, const cluster::GpuTypeRegistry& reg) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_trace_file: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return trace_from_csv(ss.str(), reg);
}

}  // namespace hadar::workload
