// Table II of the paper: the five representative DNN training workloads with
// their datasets, relative sizes, per-accelerator throughput profiles, and
// the Table IV checkpoint-cost model. Throughput values are calibrated to
// reproduce the heterogeneity spreads Gavel reports (e.g. ResNet-50 is ~10x
// faster on a V100 than a K80, reinforcement-learning-style models only ~2x)
// — the ratios, not the absolute rates, drive every scheduling decision.
#pragma once

#include <string>
#include <vector>

#include "cluster/gpu_type.hpp"
#include "workload/job.hpp"

namespace hadar::workload {

/// One Table II entry plus the measurements the schedulers consume.
struct ModelProfile {
  std::string name;      ///< "ResNet-50", ...
  std::string task;      ///< "Image Classification", ...
  std::string dataset;   ///< "ImageNet", ...
  SizeClass size_class;  ///< Table II "Size" column
  /// Iterations/s per worker, keyed by GPU type NAME (registry-independent).
  std::vector<std::pair<std::string, double>> throughput;
  std::int64_t chunks_per_epoch;  ///< N_j: iterations per epoch
  Seconds checkpoint_save;        ///< Table IV: per-round cost w/o reallocation
  Seconds checkpoint_load;        ///< Table IV: extra cost with reallocation
  double model_size_mb;           ///< parameter size (PS network / storage models)
};

/// Registry of model profiles; the default() zoo carries Table II.
class ModelZoo {
 public:
  ModelZoo() = default;
  explicit ModelZoo(std::vector<ModelProfile> profiles);

  int size() const { return static_cast<int>(profiles_.size()); }
  const ModelProfile& profile(int i) const;
  const ModelProfile* find(const std::string& name) const;

  /// Profiles whose Table II size matches `c`.
  std::vector<const ModelProfile*> by_size(SizeClass c) const;

  /// Resolves a profile's named throughputs against a registry; types absent
  /// from the profile get rate 0 (job cannot run there).
  std::vector<double> throughput_vector(const ModelProfile& p,
                                        const cluster::GpuTypeRegistry& reg) const;

  /// Builds a JobSpec for `model` with the work sized so that running all
  /// `num_workers` on the model's fastest type takes `ideal_runtime` seconds.
  JobSpec make_job(const std::string& model, const cluster::GpuTypeRegistry& reg,
                   int num_workers, Seconds ideal_runtime, Seconds arrival = 0.0) const;

  /// Table II + an A3C-style reinforcement-learning model (the intro's
  /// low-heterogeneity example, used by tests and ablations).
  static ModelZoo paper_default();

 private:
  std::vector<ModelProfile> profiles_;
};

}  // namespace hadar::workload
