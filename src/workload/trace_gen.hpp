// Synthetic Philly-style trace generation (Sec. IV-A of the paper).
//
// The paper takes 480 jobs from the busiest hours of the Microsoft trace [9]
// and, because the trace lacks model details, buckets jobs by total GPU-time
// into S/M/L/XL classes and samples a Table II model per class uniformly.
// The public trace is not redistributable, so we synthesize jobs directly
// from those published distributions: per-class GPU-hour ranges, uniform
// class sampling, heavy-tailed worker counts, and static or Poisson arrivals.
//
// Step-invariance: every job draws from its own SplitMix64 stream forked
// from (seed, job index) — the same scheme as sim::FailureModel's
// fork-per-process streams — so job k's attributes never depend on how many
// draws jobs 0..k-1 consumed. Generating a spec in one batch, in chunks, or
// through a TraceStream resumed from a saved cursor yields the identical
// trace, which is what lets the service daemon regenerate the not-yet-
// admitted suffix of an arrival stream after a crash.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "workload/model_zoo.hpp"

namespace hadar::common {
class BinaryWriter;
class BinaryReader;
}  // namespace hadar::common

namespace hadar::workload {

/// How job arrival times are generated.
enum class ArrivalPattern {
  kStatic,      ///< all jobs available at t=0 ("static trace")
  kContinuous,  ///< Poisson process with rate jobs_per_hour ("continuous")
};

struct TraceGenConfig {
  int num_jobs = 480;
  ArrivalPattern arrivals = ArrivalPattern::kStatic;
  double jobs_per_hour = 60.0;  ///< mean Poisson rate for kContinuous
  /// Diurnal load modulation for continuous arrivals, in [0, 1): the
  /// instantaneous rate follows jobs_per_hour * (1 + A sin(2 pi t / 24 h)),
  /// matching the day/night swing of production traces. 0 = stationary.
  double diurnal_amplitude = 0.0;
  std::uint64_t seed = 42;

  /// Gang sizes and their sampling weights: mostly small requests with a
  /// heavy tail of multi-node gangs, as in the production analyses the paper
  /// cites. The tail (12-16 workers vs 20 devices per type) is what makes
  /// homogeneous gangs scarce — the contention Hadar's task-level mixing
  /// targets.
  std::vector<int> worker_counts = {1, 2, 4, 8, 12, 16};
  std::vector<double> worker_weights = {0.38, 0.22, 0.18, 0.12, 0.06, 0.04};

  /// GPU-hour range per size class (Sec. IV-A): S 0-1, M 1-10, L 10-50,
  /// XL 60-100. Sampled log-uniformly within the class.
  double small_lo = 0.1, small_hi = 1.0;
  double medium_lo = 1.0, medium_hi = 10.0;
  double large_lo = 10.0, large_hi = 50.0;
  double xlarge_lo = 60.0, xlarge_hi = 100.0;

  /// Relative frequency of each class (paper: uniform sampling).
  double small_weight = 1.0, medium_weight = 1.0, large_weight = 1.0, xlarge_weight = 1.0;

  /// When set, every job uses this model instead of class-based sampling.
  std::optional<std::string> fixed_model;

  /// Deadline / multi-tenant knobs (scenario diversity, DESIGN.md §15).
  /// The draws come from a separately salted fork of the per-job stream, so
  /// with deadline_fraction == 0 and num_tenants <= 1 the generated trace is
  /// byte-identical to one produced before these knobs existed.
  double deadline_fraction = 0.0;  ///< fraction of jobs carrying a deadline, in [0, 1]
  double deadline_slack_lo = 1.5;  ///< min deadline slack, multiple of ideal runtime
  double deadline_slack_hi = 4.0;  ///< max deadline slack, multiple of ideal runtime
  int num_tenants = 1;             ///< jobs draw a tenant uniformly from [0, num_tenants)
};

/// Incremental generator over the same distribution `TraceGenerator::
/// generate` samples: next() yields job `index()` with a dense id equal to
/// its index (arrival-ordered by construction for Poisson streams). The
/// cursor (index, Poisson clock) is the stream's entire mutable state;
/// save()/restore() make the stream resumable across a daemon crash, and
/// the fork-per-job RNG scheme guarantees the resumed suffix is identical
/// to an uninterrupted generation.
class TraceStream {
 public:
  TraceStream(const ModelZoo* zoo, const cluster::GpuTypeRegistry* registry,
              TraceGenConfig cfg);

  /// Generates the next job of the stream and advances the cursor. Streams
  /// are unbounded: cfg.num_jobs does not limit next().
  JobSpec next();

  int index() const { return index_; }        ///< jobs generated so far
  Seconds clock() const { return clock_; }    ///< Poisson arrival clock

  void save(common::BinaryWriter& w) const;
  void restore(common::BinaryReader& r);

 private:
  const ModelZoo* zoo_;
  const cluster::GpuTypeRegistry* registry_;
  TraceGenConfig cfg_;
  int index_ = 0;
  Seconds clock_ = 0.0;
};

/// Deterministic (seeded) trace generator over a model zoo and GPU registry.
class TraceGenerator {
 public:
  TraceGenerator(const ModelZoo* zoo, const cluster::GpuTypeRegistry* registry);

  /// Generates a finalized trace (arrival-sorted, dense ids). Equivalent to
  /// draining a TraceStream for cfg.num_jobs jobs.
  Trace generate(const TraceGenConfig& cfg) const;

  /// The 10-job mixed workload of the prototype experiments (Sec. IV-B):
  /// two jobs per Table II model with 1-4 workers, static arrivals.
  Trace prototype_workload(std::uint64_t seed = 7) const;

 private:
  const ModelZoo* zoo_;
  const cluster::GpuTypeRegistry* registry_;
};

}  // namespace hadar::workload
