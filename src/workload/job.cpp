#include "workload/job.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/binary.hpp"

namespace hadar::workload {

const char* to_string(SizeClass c) {
  switch (c) {
    case SizeClass::kSmall: return "S";
    case SizeClass::kMedium: return "M";
    case SizeClass::kLarge: return "L";
    case SizeClass::kXLarge: return "XL";
  }
  return "?";
}

double JobSpec::max_throughput() const {
  double x = 0.0;
  for (double v : throughput) x = std::max(x, v);
  return x;
}

double JobSpec::min_throughput() const {
  double x = 0.0;
  bool seen = false;
  for (double v : throughput) {
    if (v > 0.0) {
      x = seen ? std::min(x, v) : v;
      seen = true;
    }
  }
  return seen ? x : 0.0;
}

Seconds JobSpec::min_runtime() const {
  const double x = max_throughput();
  if (x <= 0.0 || num_workers <= 0) return kInfiniteTime;
  return total_iterations() / (x * num_workers);
}

Seconds JobSpec::max_runtime() const {
  const double x = min_throughput();
  if (x <= 0.0 || num_workers <= 0) return kInfiniteTime;
  return total_iterations() / (x * num_workers);
}

void JobSpec::validate(int num_types) const {
  if (num_workers <= 0) throw std::invalid_argument("JobSpec: num_workers <= 0");
  if (epochs <= 0) throw std::invalid_argument("JobSpec: epochs <= 0");
  if (chunks_per_epoch <= 0) throw std::invalid_argument("JobSpec: chunks_per_epoch <= 0");
  if (arrival < 0.0) throw std::invalid_argument("JobSpec: negative arrival");
  if (throughput.size() != static_cast<std::size_t>(num_types)) {
    throw std::invalid_argument("JobSpec: throughput arity != num GPU types");
  }
  if (max_throughput() <= 0.0) {
    throw std::invalid_argument("JobSpec: no device type with positive throughput");
  }
  for (double v : throughput) {
    if (v < 0.0) throw std::invalid_argument("JobSpec: negative throughput");
  }
  if (checkpoint_save < 0.0 || checkpoint_load < 0.0) {
    throw std::invalid_argument("JobSpec: negative checkpoint cost");
  }
  if (model_size_mb < 0.0) throw std::invalid_argument("JobSpec: negative model size");
  if (has_deadline() && deadline < arrival) {
    throw std::invalid_argument("JobSpec: deadline before arrival");
  }
  if (tenant < 0) throw std::invalid_argument("JobSpec: negative tenant id");
}

void JobSpec::save(common::BinaryWriter& w) const {
  w.i32(id);
  w.str(model);
  w.f64(arrival);
  w.i32(num_workers);
  w.i64(epochs);
  w.i64(chunks_per_epoch);
  common::write_f64_vector(w, throughput);
  w.f64(checkpoint_save);
  w.f64(checkpoint_load);
  w.f64(model_size_mb);
  w.u8(static_cast<std::uint8_t>(size_class));
  w.f64(deadline);
  w.i32(tenant);
}

JobSpec JobSpec::restore(common::BinaryReader& r) {
  JobSpec j;
  j.id = r.i32();
  j.model = r.str();
  j.arrival = r.f64();
  j.num_workers = r.i32();
  j.epochs = r.i64();
  j.chunks_per_epoch = r.i64();
  j.throughput = common::read_f64_vector(r);
  j.checkpoint_save = r.f64();
  j.checkpoint_load = r.f64();
  j.model_size_mb = r.f64();
  j.size_class = static_cast<SizeClass>(r.u8());
  j.deadline = r.f64();
  j.tenant = r.i32();
  return j;
}

void Trace::finalize() {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<JobId>(i);
}

double Trace::total_gpu_hours() const {
  double s = 0.0;
  for (const auto& j : jobs) {
    const double rt = j.min_runtime();
    if (rt != kInfiniteTime) s += rt * j.num_workers / 3600.0;
  }
  return s;
}

}  // namespace hadar::workload
