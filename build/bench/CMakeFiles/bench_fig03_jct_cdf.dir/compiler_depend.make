# Empty compiler generated dependencies file for bench_fig03_jct_cdf.
# This may be replaced when dependencies are built.
