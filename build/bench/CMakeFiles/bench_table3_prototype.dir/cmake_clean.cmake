file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_prototype.dir/bench_table3_prototype.cpp.o"
  "CMakeFiles/bench_table3_prototype.dir/bench_table3_prototype.cpp.o.d"
  "bench_table3_prototype"
  "bench_table3_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
