# Empty compiler generated dependencies file for bench_table4_overhead.
# This may be replaced when dependencies are built.
