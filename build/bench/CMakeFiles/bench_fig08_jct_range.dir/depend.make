# Empty dependencies file for bench_fig08_jct_range.
# This may be replaced when dependencies are built.
