file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_jct_range.dir/bench_fig08_jct_range.cpp.o"
  "CMakeFiles/bench_fig08_jct_range.dir/bench_fig08_jct_range.cpp.o.d"
  "bench_fig08_jct_range"
  "bench_fig08_jct_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_jct_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
