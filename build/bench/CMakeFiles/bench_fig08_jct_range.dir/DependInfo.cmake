
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig08_jct_range.cpp" "bench/CMakeFiles/bench_fig08_jct_range.dir/bench_fig08_jct_range.cpp.o" "gcc" "bench/CMakeFiles/bench_fig08_jct_range.dir/bench_fig08_jct_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
