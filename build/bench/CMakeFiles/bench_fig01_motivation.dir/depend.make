# Empty dependencies file for bench_fig01_motivation.
# This may be replaced when dependencies are built.
