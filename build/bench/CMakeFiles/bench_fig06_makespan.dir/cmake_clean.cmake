file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_makespan.dir/bench_fig06_makespan.cpp.o"
  "CMakeFiles/bench_fig06_makespan.dir/bench_fig06_makespan.cpp.o.d"
  "bench_fig06_makespan"
  "bench_fig06_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
