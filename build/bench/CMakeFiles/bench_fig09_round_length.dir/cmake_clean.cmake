file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_round_length.dir/bench_fig09_round_length.cpp.o"
  "CMakeFiles/bench_fig09_round_length.dir/bench_fig09_round_length.cpp.o.d"
  "bench_fig09_round_length"
  "bench_fig09_round_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_round_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
