# Empty dependencies file for bench_fig09_round_length.
# This may be replaced when dependencies are built.
