# Empty dependencies file for bench_fig04_utilization.
# This may be replaced when dependencies are built.
