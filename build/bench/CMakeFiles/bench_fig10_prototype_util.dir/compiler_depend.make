# Empty compiler generated dependencies file for bench_fig10_prototype_util.
# This may be replaced when dependencies are built.
