file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prototype_util.dir/bench_fig10_prototype_util.cpp.o"
  "CMakeFiles/bench_fig10_prototype_util.dir/bench_fig10_prototype_util.cpp.o.d"
  "bench_fig10_prototype_util"
  "bench_fig10_prototype_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prototype_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
