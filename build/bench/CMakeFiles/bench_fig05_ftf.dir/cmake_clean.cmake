file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_ftf.dir/bench_fig05_ftf.cpp.o"
  "CMakeFiles/bench_fig05_ftf.dir/bench_fig05_ftf.cpp.o.d"
  "bench_fig05_ftf"
  "bench_fig05_ftf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_ftf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
