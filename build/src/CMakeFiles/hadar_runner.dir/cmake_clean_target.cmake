file(REMOVE_RECURSE
  "libhadar_runner.a"
)
