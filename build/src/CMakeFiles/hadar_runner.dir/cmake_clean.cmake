file(REMOVE_RECURSE
  "CMakeFiles/hadar_runner.dir/runner/experiment.cpp.o"
  "CMakeFiles/hadar_runner.dir/runner/experiment.cpp.o.d"
  "CMakeFiles/hadar_runner.dir/runner/scenarios.cpp.o"
  "CMakeFiles/hadar_runner.dir/runner/scenarios.cpp.o.d"
  "libhadar_runner.a"
  "libhadar_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
