# Empty dependencies file for hadar_runner.
# This may be replaced when dependencies are built.
