file(REMOVE_RECURSE
  "CMakeFiles/hadar_workload.dir/workload/job.cpp.o"
  "CMakeFiles/hadar_workload.dir/workload/job.cpp.o.d"
  "CMakeFiles/hadar_workload.dir/workload/model_zoo.cpp.o"
  "CMakeFiles/hadar_workload.dir/workload/model_zoo.cpp.o.d"
  "CMakeFiles/hadar_workload.dir/workload/trace_gen.cpp.o"
  "CMakeFiles/hadar_workload.dir/workload/trace_gen.cpp.o.d"
  "CMakeFiles/hadar_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/hadar_workload.dir/workload/trace_io.cpp.o.d"
  "libhadar_workload.a"
  "libhadar_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
