file(REMOVE_RECURSE
  "libhadar_workload.a"
)
