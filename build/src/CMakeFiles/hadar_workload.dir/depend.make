# Empty dependencies file for hadar_workload.
# This may be replaced when dependencies are built.
