
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/job.cpp" "src/CMakeFiles/hadar_workload.dir/workload/job.cpp.o" "gcc" "src/CMakeFiles/hadar_workload.dir/workload/job.cpp.o.d"
  "/root/repo/src/workload/model_zoo.cpp" "src/CMakeFiles/hadar_workload.dir/workload/model_zoo.cpp.o" "gcc" "src/CMakeFiles/hadar_workload.dir/workload/model_zoo.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/CMakeFiles/hadar_workload.dir/workload/trace_gen.cpp.o" "gcc" "src/CMakeFiles/hadar_workload.dir/workload/trace_gen.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/hadar_workload.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/hadar_workload.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
