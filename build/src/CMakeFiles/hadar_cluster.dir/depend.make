# Empty dependencies file for hadar_cluster.
# This may be replaced when dependencies are built.
