file(REMOVE_RECURSE
  "libhadar_cluster.a"
)
