
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/allocation.cpp" "src/CMakeFiles/hadar_cluster.dir/cluster/allocation.cpp.o" "gcc" "src/CMakeFiles/hadar_cluster.dir/cluster/allocation.cpp.o.d"
  "/root/repo/src/cluster/cluster_spec.cpp" "src/CMakeFiles/hadar_cluster.dir/cluster/cluster_spec.cpp.o" "gcc" "src/CMakeFiles/hadar_cluster.dir/cluster/cluster_spec.cpp.o.d"
  "/root/repo/src/cluster/cluster_state.cpp" "src/CMakeFiles/hadar_cluster.dir/cluster/cluster_state.cpp.o" "gcc" "src/CMakeFiles/hadar_cluster.dir/cluster/cluster_state.cpp.o.d"
  "/root/repo/src/cluster/gpu_type.cpp" "src/CMakeFiles/hadar_cluster.dir/cluster/gpu_type.cpp.o" "gcc" "src/CMakeFiles/hadar_cluster.dir/cluster/gpu_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
