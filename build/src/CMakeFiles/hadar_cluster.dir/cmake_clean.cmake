file(REMOVE_RECURSE
  "CMakeFiles/hadar_cluster.dir/cluster/allocation.cpp.o"
  "CMakeFiles/hadar_cluster.dir/cluster/allocation.cpp.o.d"
  "CMakeFiles/hadar_cluster.dir/cluster/cluster_spec.cpp.o"
  "CMakeFiles/hadar_cluster.dir/cluster/cluster_spec.cpp.o.d"
  "CMakeFiles/hadar_cluster.dir/cluster/cluster_state.cpp.o"
  "CMakeFiles/hadar_cluster.dir/cluster/cluster_state.cpp.o.d"
  "CMakeFiles/hadar_cluster.dir/cluster/gpu_type.cpp.o"
  "CMakeFiles/hadar_cluster.dir/cluster/gpu_type.cpp.o.d"
  "libhadar_cluster.a"
  "libhadar_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
