file(REMOVE_RECURSE
  "CMakeFiles/hadar_common.dir/common/csv.cpp.o"
  "CMakeFiles/hadar_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/hadar_common.dir/common/logging.cpp.o"
  "CMakeFiles/hadar_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/hadar_common.dir/common/rng.cpp.o"
  "CMakeFiles/hadar_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hadar_common.dir/common/stats.cpp.o"
  "CMakeFiles/hadar_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/hadar_common.dir/common/table.cpp.o"
  "CMakeFiles/hadar_common.dir/common/table.cpp.o.d"
  "libhadar_common.a"
  "libhadar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
