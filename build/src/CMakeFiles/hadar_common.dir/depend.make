# Empty dependencies file for hadar_common.
# This may be replaced when dependencies are built.
