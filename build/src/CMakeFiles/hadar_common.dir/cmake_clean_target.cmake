file(REMOVE_RECURSE
  "libhadar_common.a"
)
