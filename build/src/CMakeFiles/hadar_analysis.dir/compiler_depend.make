# Empty compiler generated dependencies file for hadar_analysis.
# This may be replaced when dependencies are built.
