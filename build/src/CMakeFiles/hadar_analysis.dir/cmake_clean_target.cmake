file(REMOVE_RECURSE
  "libhadar_analysis.a"
)
