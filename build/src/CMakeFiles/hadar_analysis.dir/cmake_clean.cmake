file(REMOVE_RECURSE
  "CMakeFiles/hadar_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/hadar_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/hadar_analysis.dir/analysis/timeline.cpp.o"
  "CMakeFiles/hadar_analysis.dir/analysis/timeline.cpp.o.d"
  "libhadar_analysis.a"
  "libhadar_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
