file(REMOVE_RECURSE
  "libhadar_sim.a"
)
