file(REMOVE_RECURSE
  "CMakeFiles/hadar_sim.dir/sim/event_log.cpp.o"
  "CMakeFiles/hadar_sim.dir/sim/event_log.cpp.o.d"
  "CMakeFiles/hadar_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/hadar_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/hadar_sim.dir/sim/network.cpp.o"
  "CMakeFiles/hadar_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/hadar_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/hadar_sim.dir/sim/simulator.cpp.o.d"
  "libhadar_sim.a"
  "libhadar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
