# Empty compiler generated dependencies file for hadar_sim.
# This may be replaced when dependencies are built.
