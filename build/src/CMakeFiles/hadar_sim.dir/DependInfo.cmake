
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_log.cpp" "src/CMakeFiles/hadar_sim.dir/sim/event_log.cpp.o" "gcc" "src/CMakeFiles/hadar_sim.dir/sim/event_log.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/hadar_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/hadar_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/hadar_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/hadar_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/hadar_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/hadar_sim.dir/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
