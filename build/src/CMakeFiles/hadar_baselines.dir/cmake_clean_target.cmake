file(REMOVE_RECURSE
  "libhadar_baselines.a"
)
