
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alloc_util.cpp" "src/CMakeFiles/hadar_baselines.dir/baselines/alloc_util.cpp.o" "gcc" "src/CMakeFiles/hadar_baselines.dir/baselines/alloc_util.cpp.o.d"
  "/root/repo/src/baselines/gavel.cpp" "src/CMakeFiles/hadar_baselines.dir/baselines/gavel.cpp.o" "gcc" "src/CMakeFiles/hadar_baselines.dir/baselines/gavel.cpp.o.d"
  "/root/repo/src/baselines/srtf.cpp" "src/CMakeFiles/hadar_baselines.dir/baselines/srtf.cpp.o" "gcc" "src/CMakeFiles/hadar_baselines.dir/baselines/srtf.cpp.o.d"
  "/root/repo/src/baselines/tiresias.cpp" "src/CMakeFiles/hadar_baselines.dir/baselines/tiresias.cpp.o" "gcc" "src/CMakeFiles/hadar_baselines.dir/baselines/tiresias.cpp.o.d"
  "/root/repo/src/baselines/yarn_cs.cpp" "src/CMakeFiles/hadar_baselines.dir/baselines/yarn_cs.cpp.o" "gcc" "src/CMakeFiles/hadar_baselines.dir/baselines/yarn_cs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
