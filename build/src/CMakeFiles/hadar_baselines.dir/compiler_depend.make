# Empty compiler generated dependencies file for hadar_baselines.
# This may be replaced when dependencies are built.
