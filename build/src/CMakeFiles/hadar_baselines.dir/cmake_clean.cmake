file(REMOVE_RECURSE
  "CMakeFiles/hadar_baselines.dir/baselines/alloc_util.cpp.o"
  "CMakeFiles/hadar_baselines.dir/baselines/alloc_util.cpp.o.d"
  "CMakeFiles/hadar_baselines.dir/baselines/gavel.cpp.o"
  "CMakeFiles/hadar_baselines.dir/baselines/gavel.cpp.o.d"
  "CMakeFiles/hadar_baselines.dir/baselines/srtf.cpp.o"
  "CMakeFiles/hadar_baselines.dir/baselines/srtf.cpp.o.d"
  "CMakeFiles/hadar_baselines.dir/baselines/tiresias.cpp.o"
  "CMakeFiles/hadar_baselines.dir/baselines/tiresias.cpp.o.d"
  "CMakeFiles/hadar_baselines.dir/baselines/yarn_cs.cpp.o"
  "CMakeFiles/hadar_baselines.dir/baselines/yarn_cs.cpp.o.d"
  "libhadar_baselines.a"
  "libhadar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
