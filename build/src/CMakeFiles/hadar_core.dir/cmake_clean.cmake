file(REMOVE_RECURSE
  "CMakeFiles/hadar_core.dir/core/competitive.cpp.o"
  "CMakeFiles/hadar_core.dir/core/competitive.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/dp_allocation.cpp.o"
  "CMakeFiles/hadar_core.dir/core/dp_allocation.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/find_alloc.cpp.o"
  "CMakeFiles/hadar_core.dir/core/find_alloc.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/hadar_scheduler.cpp.o"
  "CMakeFiles/hadar_core.dir/core/hadar_scheduler.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/pricing.cpp.o"
  "CMakeFiles/hadar_core.dir/core/pricing.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/throughput_estimator.cpp.o"
  "CMakeFiles/hadar_core.dir/core/throughput_estimator.cpp.o.d"
  "CMakeFiles/hadar_core.dir/core/utility.cpp.o"
  "CMakeFiles/hadar_core.dir/core/utility.cpp.o.d"
  "libhadar_core.a"
  "libhadar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
