# Empty compiler generated dependencies file for hadar_core.
# This may be replaced when dependencies are built.
