file(REMOVE_RECURSE
  "libhadar_core.a"
)
