
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/competitive.cpp" "src/CMakeFiles/hadar_core.dir/core/competitive.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/competitive.cpp.o.d"
  "/root/repo/src/core/dp_allocation.cpp" "src/CMakeFiles/hadar_core.dir/core/dp_allocation.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/dp_allocation.cpp.o.d"
  "/root/repo/src/core/find_alloc.cpp" "src/CMakeFiles/hadar_core.dir/core/find_alloc.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/find_alloc.cpp.o.d"
  "/root/repo/src/core/hadar_scheduler.cpp" "src/CMakeFiles/hadar_core.dir/core/hadar_scheduler.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/hadar_scheduler.cpp.o.d"
  "/root/repo/src/core/pricing.cpp" "src/CMakeFiles/hadar_core.dir/core/pricing.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/pricing.cpp.o.d"
  "/root/repo/src/core/throughput_estimator.cpp" "src/CMakeFiles/hadar_core.dir/core/throughput_estimator.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/throughput_estimator.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/CMakeFiles/hadar_core.dir/core/utility.cpp.o" "gcc" "src/CMakeFiles/hadar_core.dir/core/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
