# Empty dependencies file for hadar_solver.
# This may be replaced when dependencies are built.
