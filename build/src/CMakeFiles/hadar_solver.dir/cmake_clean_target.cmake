file(REMOVE_RECURSE
  "libhadar_solver.a"
)
