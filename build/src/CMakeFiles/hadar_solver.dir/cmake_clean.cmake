file(REMOVE_RECURSE
  "CMakeFiles/hadar_solver.dir/solver/lp.cpp.o"
  "CMakeFiles/hadar_solver.dir/solver/lp.cpp.o.d"
  "CMakeFiles/hadar_solver.dir/solver/maxmin.cpp.o"
  "CMakeFiles/hadar_solver.dir/solver/maxmin.cpp.o.d"
  "libhadar_solver.a"
  "libhadar_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadar_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
