file(REMOVE_RECURSE
  "CMakeFiles/continuous_cluster.dir/continuous_cluster.cpp.o"
  "CMakeFiles/continuous_cluster.dir/continuous_cluster.cpp.o.d"
  "continuous_cluster"
  "continuous_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
