# Empty dependencies file for continuous_cluster.
# This may be replaced when dependencies are built.
