# Empty compiler generated dependencies file for motivation_example.
# This may be replaced when dependencies are built.
