file(REMOVE_RECURSE
  "CMakeFiles/motivation_example.dir/motivation_example.cpp.o"
  "CMakeFiles/motivation_example.dir/motivation_example.cpp.o.d"
  "motivation_example"
  "motivation_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
