# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pricing[1]_include.cmake")
include("/root/repo/build/tests/test_find_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_dp_allocation[1]_include.cmake")
include("/root/repo/build/tests/test_hadar_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_competitive[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
