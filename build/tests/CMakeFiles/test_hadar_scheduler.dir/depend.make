# Empty dependencies file for test_hadar_scheduler.
# This may be replaced when dependencies are built.
