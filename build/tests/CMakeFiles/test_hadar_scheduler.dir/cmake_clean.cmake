file(REMOVE_RECURSE
  "CMakeFiles/test_hadar_scheduler.dir/test_hadar_scheduler.cpp.o"
  "CMakeFiles/test_hadar_scheduler.dir/test_hadar_scheduler.cpp.o.d"
  "test_hadar_scheduler"
  "test_hadar_scheduler.pdb"
  "test_hadar_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hadar_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
