# Empty compiler generated dependencies file for test_competitive.
# This may be replaced when dependencies are built.
