file(REMOVE_RECURSE
  "CMakeFiles/test_competitive.dir/test_competitive.cpp.o"
  "CMakeFiles/test_competitive.dir/test_competitive.cpp.o.d"
  "test_competitive"
  "test_competitive.pdb"
  "test_competitive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
