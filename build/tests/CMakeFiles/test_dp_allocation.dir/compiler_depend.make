# Empty compiler generated dependencies file for test_dp_allocation.
# This may be replaced when dependencies are built.
