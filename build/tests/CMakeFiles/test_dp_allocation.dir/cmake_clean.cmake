file(REMOVE_RECURSE
  "CMakeFiles/test_dp_allocation.dir/test_dp_allocation.cpp.o"
  "CMakeFiles/test_dp_allocation.dir/test_dp_allocation.cpp.o.d"
  "test_dp_allocation"
  "test_dp_allocation.pdb"
  "test_dp_allocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
