file(REMOVE_RECURSE
  "CMakeFiles/test_find_alloc.dir/test_find_alloc.cpp.o"
  "CMakeFiles/test_find_alloc.dir/test_find_alloc.cpp.o.d"
  "test_find_alloc"
  "test_find_alloc.pdb"
  "test_find_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_find_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
