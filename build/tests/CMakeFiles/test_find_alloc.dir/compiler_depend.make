# Empty compiler generated dependencies file for test_find_alloc.
# This may be replaced when dependencies are built.
