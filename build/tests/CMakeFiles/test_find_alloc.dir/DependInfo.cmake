
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_find_alloc.cpp" "tests/CMakeFiles/test_find_alloc.dir/test_find_alloc.cpp.o" "gcc" "tests/CMakeFiles/test_find_alloc.dir/test_find_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hadar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hadar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
