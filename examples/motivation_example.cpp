// The paper's Fig. 1 walk-through, narrated: three jobs on a tiny
// heterogeneous cluster (2 V100, 3 P100, 1 K80), scheduled by Hadar with
// the event log enabled so every start / reallocation / finish is visible.
//
//   ./motivation_example
#include <cstdio>

#include "runner/experiment.hpp"
#include "sim/simulator.hpp"

using namespace hadar;

int main() {
  const auto spec = cluster::ClusterSpec::from_counts(
      cluster::GpuTypeRegistry::simulation_default(),
      {std::vector<int>{2, 0, 0}, std::vector<int>{0, 3, 0}, std::vector<int>{0, 0, 1}});

  auto make = [](JobId id, int workers, std::int64_t epochs, std::vector<double> x) {
    workload::JobSpec j;
    j.id = id;
    j.model = std::string("J").append(std::to_string(id + 1));
    j.num_workers = workers;
    j.epochs = epochs;
    j.chunks_per_epoch = 100;
    j.throughput = std::move(x);
    return j;
  };
  workload::Trace trace;
  trace.jobs = {make(0, 3, 80, {20.0, 15.0, 10.0}), make(1, 2, 30, {10.0, 7.5, 5.0}),
                make(2, 2, 50, {5.0, 5.0, 6.25})};
  trace.finalize();

  std::printf("Motivating example (paper Fig. 1)\n");
  std::printf("cluster: %s\n", spec.summary().c_str());
  for (const auto& j : trace.jobs) {
    std::printf("  %s: %d workers, %lld epochs, rates V100=%.1f P100=%.1f K80=%.2f it/s\n",
                j.model.c_str(), j.num_workers, static_cast<long long>(j.epochs),
                j.throughput[0], j.throughput[1], j.throughput[2]);
  }

  sim::SimConfig sc;
  sc.round_length = 60.0;
  sc.flat_reallocation_penalty = 0.0;
  sc.network.penalty_factor = 1.0;
  sc.enable_event_log = true;

  for (const char* name : {"hadar", "gavel"}) {
    auto sched = runner::make_scheduler(name);
    sim::Simulator sim(sc);
    const auto r = sim.run(spec, trace, *sched);
    std::printf("\n--- %s ---\n%s", sched->name().c_str(),
                sim.event_log().to_string().c_str());
    std::printf("avg JCT: %.1f min, makespan: %.1f min\n", r.avg_jct / 60.0,
                r.makespan / 60.0);
  }

  std::printf(
      "\nThe point of the example: Hadar may split J1's three tasks across GPU\n"
      "pools (e.g. 2xV100 + 1xP100), while Gavel must find three SAME-type\n"
      "devices for it — with only 2 V100s, Gavel is forced onto the P100 pool\n"
      "or must wait, which is exactly the task-level flexibility gap.\n");
  return 0;
}
