// A continuously loaded cluster: Poisson arrivals against the paper's
// 15-node / 60-GPU cluster, with stragglers injected, comparing Hadar with
// and without the profiling throughput estimator. Demonstrates the online
// operation mode (Sec. III-E, Fig. 2).
//
//   ./continuous_cluster [jobs_per_hour] [num_jobs] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "runner/scenarios.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 60.0;
  const int num_jobs = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  if (rate <= 0.0 || num_jobs <= 0) {
    std::fprintf(stderr, "usage: %s [jobs_per_hour] [num_jobs] [seed]\n", argv[0]);
    return 1;
  }

  auto cfg = runner::paper_continuous(rate, num_jobs, seed);
  cfg.sim.straggler.probability = 0.05;  // 5% of job-rounds straggle
  cfg.sim.straggler.slowdown = 0.5;

  std::printf("Continuous cluster: %s\n", cfg.spec.summary().c_str());
  std::printf("arrivals: Poisson %.0f jobs/hour, %d jobs, 5%% straggler rounds\n\n", rate,
              num_jobs);

  const auto runs =
      runner::compare(cfg, {"hadar", "hadar-estimator", "gavel", "tiresias"});

  common::AsciiTable t("Online operation under stragglers",
                       {"scheduler", "avg JCT", "median JCT", "queueing", "job util",
                        "avg FTF"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    std::string label = run.scheduler;
    if (&run == &runs[1]) label += " (profiling estimator)";
    t.add_row({label, common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.median_jct),
               common::AsciiTable::duration(r.avg_queueing_delay),
               common::AsciiTable::percent(r.avg_job_utilization),
               common::AsciiTable::num(r.avg_ftf, 3)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "hadar-estimator starts with no throughput knowledge and profiles each\n"
      "job during its first rounds (Fig. 2's throughput estimator); its JCT\n"
      "should trail oracle Hadar only modestly.\n");
  return 0;
}
