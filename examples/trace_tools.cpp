// Workload tooling: generate a synthetic Philly-style trace to CSV, inspect
// a saved trace, or replay one under a chosen scheduler with a Gantt
// timeline and per-job CSV export.
//
//   ./trace_tools gen <out.csv> [num_jobs] [jobs_per_hour (0=static)] [seed]
//   ./trace_tools info <trace.csv>
//   ./trace_tools replay <trace.csv> [scheduler] [gantt_jobs]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "analysis/report.hpp"
#include "analysis/timeline.hpp"
#include "runner/experiment.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace_gen.hpp"
#include "workload/trace_io.hpp"

using namespace hadar;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s gen <out.csv> [num_jobs] [jobs_per_hour (0=static)] [seed]\n"
               "  %s info <trace.csv>\n"
               "  %s replay <trace.csv> [scheduler] [gantt_jobs]\n",
               argv0, argv0, argv0);
  return 1;
}

int cmd_gen(int argc, char** argv) {
  const char* path = argv[2];
  const auto spec = cluster::ClusterSpec::simulation_default();
  const auto zoo = workload::ModelZoo::paper_default();
  workload::TraceGenerator gen(&zoo, &spec.types());
  workload::TraceGenConfig cfg;
  cfg.num_jobs = argc > 3 ? std::atoi(argv[3]) : 480;
  const double rate = argc > 4 ? std::atof(argv[4]) : 0.0;
  if (rate > 0.0) {
    cfg.arrivals = workload::ArrivalPattern::kContinuous;
    cfg.jobs_per_hour = rate;
  }
  cfg.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 42;
  const auto trace = gen.generate(cfg);
  if (!workload::write_trace_file(path, trace, spec.types())) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %zu jobs (%.0f GPU-hours) to %s\n", trace.jobs.size(),
              trace.total_gpu_hours(), path);
  return 0;
}

int cmd_info(char** argv) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  const auto trace = workload::read_trace_file(argv[2], spec.types());
  std::printf("%s: %zu jobs, %.0f GPU-hours\n", argv[2], trace.jobs.size(),
              trace.total_gpu_hours());
  std::map<std::string, int> by_model;
  std::map<workload::SizeClass, int> by_class;
  std::map<int, int> by_workers;
  for (const auto& j : trace.jobs) {
    ++by_model[j.model];
    ++by_class[j.size_class];
    ++by_workers[j.num_workers];
  }
  std::printf("models:");
  for (const auto& [m, n] : by_model) std::printf(" %s=%d", m.c_str(), n);
  std::printf("\nsize classes:");
  for (const auto& [c, n] : by_class) std::printf(" %s=%d", to_string(c), n);
  std::printf("\ngang sizes:");
  for (const auto& [w, n] : by_workers) std::printf(" %dx%d", w, n);
  std::printf("\n");
  return 0;
}

int cmd_replay(int argc, char** argv) {
  const auto spec = cluster::ClusterSpec::simulation_default();
  const auto trace = workload::read_trace_file(argv[2], spec.types());
  const std::string sched_name = argc > 3 ? argv[3] : "hadar";
  const int gantt_jobs = argc > 4 ? std::atoi(argv[4]) : 24;

  sim::SimConfig cfg;
  cfg.enable_event_log = true;
  sim::Simulator sim(cfg);
  auto sched = runner::make_scheduler(sched_name);
  const auto result = sim.run(spec, trace, *sched);

  std::printf("%s on %zu jobs: avg JCT %.2f h, makespan %.2f h, job util %.1f%%\n\n",
              sched->name().c_str(), trace.jobs.size(), result.avg_jct / 3600.0,
              result.makespan / 3600.0, result.avg_job_utilization * 100.0);
  analysis::GanttOptions opts;
  opts.max_jobs = gantt_jobs;
  std::printf("%s\n", analysis::ascii_gantt(sim.event_log(), trace, opts).c_str());

  const std::string out = std::string(argv[2]) + "." + sched_name + ".jobs.csv";
  FILE* f = std::fopen(out.c_str(), "wb");
  if (f != nullptr) {
    const std::string csv = analysis::per_job_csv(result);
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("per-job outcomes written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return cmd_info(argv);
  if (std::strcmp(argv[1], "replay") == 0) return cmd_replay(argc, argv);
  return usage(argv[0]);
}
