// Quickstart: generate a synthetic deep-learning workload, run it through
// Hadar and the three baseline schedulers on the paper's 15-node / 60-GPU
// heterogeneous cluster, and compare the headline metrics.
//
//   ./quickstart [num_jobs] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  if (num_jobs <= 0) {
    std::fprintf(stderr, "usage: %s [num_jobs] [seed]\n", argv[0]);
    return 1;
  }

  using namespace hadar;

  runner::ExperimentConfig exp = runner::paper_static(num_jobs, seed);
  std::printf("Cluster : %s\n", exp.spec.summary().c_str());
  std::printf("Workload: %d jobs, %.1f GPU-hours total, static arrivals\n\n", num_jobs,
              exp.trace.total_gpu_hours());

  const auto runs = runner::compare(exp, runner::kPaperSchedulers);

  common::AsciiTable table("Scheduler comparison",
                           {"scheduler", "avg JCT", "median JCT", "makespan", "job util",
                            "avg FTF", "preempts"});
  for (const auto& run : runs) {
    const auto& r = run.result;
    table.add_row({run.scheduler, common::AsciiTable::duration(r.avg_jct),
                   common::AsciiTable::duration(r.median_jct),
                   common::AsciiTable::duration(r.makespan),
                   common::AsciiTable::percent(r.avg_job_utilization),
                   common::AsciiTable::num(r.avg_ftf, 2),
                   common::AsciiTable::integer(r.total_preemptions)});
  }
  std::printf("%s\n", table.render().c_str());

  // Speedups vs Hadar (first row).
  const double hadar_jct = runs.front().result.avg_jct;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    std::printf("Hadar avg-JCT speedup vs %-9s: %.2fx\n", runs[i].scheduler.c_str(),
                runs[i].result.avg_jct / hadar_jct);
  }
  return 0;
}
