// The generality claim (Sec. III-A): the same Hadar optimization framework
// expresses different objectives by swapping the utility function. Runs one
// workload under the three built-in policies plus the design ablations and
// shows how each policy wins its own metric.
//
//   ./policy_playground [num_jobs] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "runner/scenarios.hpp"

using namespace hadar;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 120;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  if (num_jobs <= 0) {
    std::fprintf(stderr, "usage: %s [num_jobs] [seed]\n", argv[0]);
    return 1;
  }

  const auto cfg = runner::paper_static(num_jobs, seed);
  std::printf("Policy playground: %s, %d jobs (static)\n\n", cfg.spec.summary().c_str(),
              num_jobs);

  const std::vector<std::pair<std::string, std::string>> entries = {
      {"hadar", "avg-JCT policy (default)"},
      {"hadar-makespan", "min-makespan policy"},
      {"hadar-ftf", "finish-time-fairness policy"},
      {"hadar-nomix", "ablation: homogeneous gangs only"},
      {"hadar-greedy", "ablation: greedy (beam width 1)"},
      {"srtf", "reference: SRTF"},
  };
  std::vector<std::string> names;
  for (const auto& [n, d] : entries) names.push_back(n);
  const auto runs = runner::compare(cfg, names);

  common::AsciiTable t("One framework, many objectives",
                       {"configuration", "avg JCT", "makespan", "avg FTF", "max FTF",
                        "job util"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i].result;
    t.add_row({entries[i].second, common::AsciiTable::duration(r.avg_jct),
               common::AsciiTable::duration(r.makespan),
               common::AsciiTable::num(r.avg_ftf, 3), common::AsciiTable::num(r.max_ftf, 2),
               common::AsciiTable::percent(r.avg_job_utilization)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected: the default policy minimizes avg JCT; the makespan policy\n"
      "wins makespan; the FTF policy pushes max FTF down; removing task-level\n"
      "mixing (nomix) or the DP branching (greedy) costs performance.\n");
  return 0;
}
